#include "core/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hrtdm::core {

void MetricsCollector::on_slot(const net::SlotRecord& record) {
  switch (record.kind) {
    case net::SlotKind::kSilence:
      ++silence_slots_;
      return;
    case net::SlotKind::kCollision:
      ++collision_slots_;
      return;
    case net::SlotKind::kSuccess: {
      HRTDM_EXPECT(record.frame.has_value(), "success slot without a frame");
      TxRecord tx;
      tx.uid = record.frame->msg_uid;
      tx.class_id = record.frame->class_id;
      tx.source = record.frame->source;
      tx.arrival = record.frame->enqueue_time;
      tx.deadline = record.frame->absolute_deadline;
      tx.tx_start = record.start;
      tx.completed = record.end;
      tx.in_burst = record.in_burst;
      log_.push_back(tx);
      return;
    }
  }
}

namespace {

/// Fenwick tree over deadline ranks.
class Bit {
 public:
  explicit Bit(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t rank) {
    for (std::size_t i = rank + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
  }
  std::int64_t count_le(std::size_t rank) const {  // ranks [0, rank]
    std::int64_t sum = 0;
    for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

std::int64_t count_deadline_inversions(const std::vector<TxRecord>& log) {
  const std::size_t n = log.size();
  if (n < 2) {
    return 0;
  }
  // The sweep below relies on tx_start being non-decreasing, which holds
  // for any log produced by the (serialising) channel. Reject anything
  // else — a spliced or reordered log would silently produce a wrong
  // count. (An earlier guard `completed <= tx_start || tx_start <=
  // tx_start` was vacuously true for every completion-ordered pair.)
  for (std::size_t i = 1; i < n; ++i) {
    HRTDM_EXPECT(log[i - 1].tx_start <= log[i].tx_start,
                 "transmission log must be ordered by tx_start");
  }

  // inv = #{(i, j) : i < j, deadline_i > deadline_j, tx_start_i >= arrival_j}
  //
  // Since tx_start is non-decreasing in i, the condition tx_start_i >=
  // arrival_j restricts i to a suffix [lo_j, j). Decompose each query into
  // two prefix queries G(p, x) = #{i < p : deadline_i > x} and answer them
  // offline with one sweep over insertion position p and a Fenwick tree
  // over deadline ranks.
  std::vector<std::int64_t> deadlines(n);
  for (std::size_t i = 0; i < n; ++i) {
    deadlines[i] = log[i].deadline.ns();
  }
  std::vector<std::int64_t> sorted = deadlines;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const auto rank_of = [&](std::int64_t d) {
    return static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), d) - sorted.begin());
  };

  std::vector<SimTime> tx_starts(n);
  for (std::size_t i = 0; i < n; ++i) {
    tx_starts[i] = log[i].tx_start;
  }

  struct PrefixQuery {
    std::size_t p;        // evaluate against the first p insertions
    std::size_t rank;     // deadline rank of the probe
    std::int64_t sign;    // +1 or -1
  };
  std::vector<PrefixQuery> queries;
  queries.reserve(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto lo = static_cast<std::size_t>(
        std::lower_bound(tx_starts.begin(), tx_starts.begin() +
                                                static_cast<std::ptrdiff_t>(j),
                         log[j].arrival) -
        tx_starts.begin());
    const std::size_t rank = rank_of(deadlines[j]);
    queries.push_back({j, rank, +1});
    queries.push_back({lo, rank, -1});
  }
  std::sort(queries.begin(), queries.end(),
            [](const PrefixQuery& a, const PrefixQuery& b) { return a.p < b.p; });

  Bit bit(sorted.size());
  std::int64_t inversions = 0;
  std::size_t q = 0;
  for (std::size_t p = 0; p <= n; ++p) {
    while (q < queries.size() && queries[q].p == p) {
      // G(p, x) = p_inserted - count_le(rank(x))
      const std::int64_t greater =
          static_cast<std::int64_t>(p) - bit.count_le(queries[q].rank);
      inversions += queries[q].sign * greater;
      ++q;
    }
    if (p < n) {
      bit.add(rank_of(deadlines[p]));
    }
  }
  HRTDM_ENSURE(inversions >= 0, "negative inversion count");
  return inversions;
}

MetricsSummary MetricsCollector::summarize() const {
  MetricsSummary summary;
  summary.silence_slots = silence_slots_;
  summary.collision_slots = collision_slots_;
  summary.delivered = static_cast<std::int64_t>(log_.size());

  util::Samples latencies;
  std::map<int, util::Samples> class_latency;
  for (const TxRecord& tx : log_) {
    const double latency = (tx.completed - tx.arrival).to_seconds();
    latencies.add(latency);
    auto& cls = summary.per_class[tx.class_id];
    cls.class_id = tx.class_id;
    ++cls.delivered;
    if (tx.completed > tx.deadline) {
      ++summary.misses;
      ++cls.misses;
    }
    class_latency[tx.class_id].add(latency);
  }
  for (auto& [id, cls] : summary.per_class) {
    auto& samples = class_latency[id];
    cls.mean_latency_s = samples.mean();
    cls.p99_latency_s = samples.percentile(99.0);
    cls.worst_latency_s = samples.max();
  }
  if (latencies.count() > 0) {
    summary.mean_latency_s = latencies.mean();
    summary.worst_latency_s = latencies.max();
    summary.p99_latency_s = latencies.percentile(99.0);
  }
  // Jain's index over per-source delivery counts:
  // (sum x)^2 / (n * sum x^2).
  std::map<int, std::int64_t> per_source;
  for (const TxRecord& tx : log_) {
    ++per_source[tx.source];
  }
  if (per_source.size() > 1) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& [source, count] : per_source) {
      sum += static_cast<double>(count);
      sum_sq += static_cast<double>(count) * static_cast<double>(count);
    }
    summary.source_fairness =
        sum * sum / (static_cast<double>(per_source.size()) * sum_sq);
  }
  summary.deadline_inversions = count_deadline_inversions(log_);
  return summary;
}

}  // namespace hrtdm::core
