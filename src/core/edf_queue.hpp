// Local Algorithm LA of the paper: each source services its waiting queue Q
// in Earliest-Deadline-First order. msg* denotes the head (smallest absolute
// deadline DM, ties broken by arrival uid for network-wide determinism).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "traffic/message.hpp"

namespace hrtdm::core {

using traffic::Message;
using util::SimTime;

class EdfQueue {
 public:
  /// Inserts a newly arrived message.
  void push(const Message& msg);

  /// msg* — the EDF head, or nullopt when Q is empty.
  std::optional<Message> head() const;

  /// Removes the message with the given uid (after successful transmission).
  /// Returns true if it was present.
  bool remove(std::int64_t uid);

  bool empty() const { return by_deadline_.empty(); }
  std::size_t size() const { return by_deadline_.size(); }

  /// Messages whose absolute deadline is already in the past at `now`
  /// (still transmitted — HRTDM requires them bounded, and the metrics
  /// layer records the misses).
  std::int64_t count_late(SimTime now) const;

 private:
  struct EdfOrder {
    bool operator()(const Message& a, const Message& b) const {
      if (a.absolute_deadline != b.absolute_deadline) {
        return a.absolute_deadline < b.absolute_deadline;
      }
      return a.uid < b.uid;
    }
  };
  std::set<Message, EdfOrder> by_deadline_;
  /// Duplicate-uid guard, and the deadline key a remove() needs to locate
  /// the set node in O(log n) (EdfOrder compares only deadline and uid).
  std::map<std::int64_t, SimTime> uids_;
};

}  // namespace hrtdm::core
