#include "core/edf_queue.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hrtdm::core {

void EdfQueue::push(const Message& msg) {
  HRTDM_EXPECT(msg.uid >= 0, "message uid must be assigned");
  HRTDM_EXPECT(uids_.emplace(msg.uid, msg.absolute_deadline).second,
               "duplicate message uid in EDF queue");
  const bool inserted = by_deadline_.insert(msg).second;
  HRTDM_ENSURE(inserted, "EDF order collision despite distinct uids");
  HRTDM_COUNT("edf.push");
  HRTDM_OBSERVE("edf.depth", by_deadline_.size());
}

std::optional<Message> EdfQueue::head() const {
  if (by_deadline_.empty()) {
    return std::nullopt;
  }
  return *by_deadline_.begin();
}

bool EdfQueue::remove(std::int64_t uid) {
  const auto uid_it = uids_.find(uid);
  if (uid_it == uids_.end()) {
    return false;
  }
  // EdfOrder compares only (absolute_deadline, uid), so a key-only probe
  // finds the node without scanning the queue.
  Message key;
  key.uid = uid;
  key.absolute_deadline = uid_it->second;
  uids_.erase(uid_it);
  const auto erased = by_deadline_.erase(key);
  HRTDM_ENSURE(erased == 1, "uid set and deadline set diverged");
  HRTDM_COUNT("edf.remove");
  return true;
}

std::int64_t EdfQueue::count_late(SimTime now) const {
  std::int64_t late = 0;
  for (const Message& msg : by_deadline_) {
    if (msg.absolute_deadline < now) {
      ++late;
    } else {
      break;  // EDF order: the rest have later deadlines
    }
  }
  return late;
}

}  // namespace hrtdm::core
