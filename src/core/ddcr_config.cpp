#include "core/ddcr_config.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::core {

Duration DdcrConfig::theta() const {
  HRTDM_EXPECT(theta_factor >= 0.0, "theta factor cannot be negative");
  return Duration::nanoseconds(static_cast<std::int64_t>(
      std::llround(theta_factor * static_cast<double>(class_width_c.ns()))));
}

void DdcrConfig::validate(int z) const {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  HRTDM_EXPECT(m_time >= 2 && m_static >= 2, "branching degrees must be >= 2");
  HRTDM_EXPECT(util::is_power_of(m_time, F), "F must be a power of m_time");
  HRTDM_EXPECT(util::is_power_of(m_static, q), "q must be a power of m_static");
  HRTDM_EXPECT(q >= z, "q must be at least the number of sources");
  HRTDM_EXPECT(class_width_c > Duration::nanoseconds(0),
               "class width c must be positive");
  HRTDM_EXPECT(!alpha.is_negative(), "alpha cannot be negative");
  HRTDM_EXPECT(theta_factor >= 0.0, "theta factor cannot be negative");
  // In perpetual mode reft is only ever advanced by successes and by
  // compressed time; with theta = 0 an idle network freezes reft while
  // physical time runs on, pushing every future arrival beyond the
  // scheduling horizon for good (livelock).
  HRTDM_EXPECT(epoch_mode != EpochMode::kPerpetual || theta_factor > 0.0,
               "perpetual epoch mode requires compressed time (theta > 0)");
  HRTDM_EXPECT(max_empty_tts >= 0, "max_empty_tts cannot be negative");
  HRTDM_EXPECT(static_cast<int>(static_indices.size()) == z,
               "static_indices must cover every source");
  std::set<std::int64_t> seen;
  for (const auto& indices : static_indices) {
    HRTDM_EXPECT(!indices.empty(), "every source needs >= 1 static index");
    for (std::size_t i = 0; i < indices.size(); ++i) {
      HRTDM_EXPECT(indices[i] >= 0 && indices[i] < q,
                   "static index out of [0, q)");
      HRTDM_EXPECT(seen.insert(indices[i]).second,
                   "static indices must be disjoint across sources");
      if (i > 0) {
        HRTDM_EXPECT(indices[i - 1] < indices[i],
                     "static indices must be ranked increasing");
      }
    }
  }
}

std::vector<std::vector<std::int64_t>> DdcrConfig::spread_indices(
    int z, std::int64_t q, const std::vector<std::int64_t>& nu) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  HRTDM_EXPECT(static_cast<int>(nu.size()) == z, "nu must have z entries");
  std::int64_t total = 0;
  for (const std::int64_t n : nu) {
    HRTDM_EXPECT(n >= 1, "every source needs >= 1 static index");
    total += n;
  }
  HRTDM_EXPECT(total <= q, "sum of nu_i cannot exceed q");

  // Round-robin over sources that still need indices, walking the leaf
  // range left to right: sources end up maximally interleaved.
  std::vector<std::vector<std::int64_t>> result(static_cast<std::size_t>(z));
  std::vector<std::int64_t> remaining = nu;
  std::int64_t next_leaf = 0;
  // Stride the assignment across the whole range when it fits evenly.
  const std::int64_t stride = std::max<std::int64_t>(q / total, 1);
  int s = 0;
  while (total > 0) {
    if (remaining[static_cast<std::size_t>(s)] > 0) {
      result[static_cast<std::size_t>(s)].push_back(next_leaf);
      --remaining[static_cast<std::size_t>(s)];
      --total;
      // With stride = floor(q/total0) and exactly total0 assignments the
      // positions 0, stride, 2*stride, ... never reach q, so indices are
      // distinct by construction.
      next_leaf += stride;
      HRTDM_ENSURE(total == 0 || next_leaf < q, "static index allocation overflow");
    }
    s = (s + 1) % z;
  }
  for (auto& indices : result) {
    std::sort(indices.begin(), indices.end());
  }
  return result;
}

std::vector<std::vector<std::int64_t>> DdcrConfig::one_index_per_source(
    int z, std::int64_t q) {
  return spread_indices(z, q, std::vector<std::int64_t>(
                                  static_cast<std::size_t>(z), 1));
}

bool DdcrConfig::supports_quiet_rejoin() const {
  return epoch_mode == EpochMode::kCsmaCdFallback &&
         (theta_factor == 0.0 || max_empty_tts > 0);
}

void DdcrConfig::validate_rejoinable() const {
  HRTDM_EXPECT(epoch_mode == EpochMode::kCsmaCdFallback,
               "quiet-period rejoin is only sound in fallback epoch mode: "
               "perpetual mode never goes quiet, so a resyncing station "
               "would listen forever; set epoch_mode = kCsmaCdFallback");
  HRTDM_EXPECT(theta_factor == 0.0 || max_empty_tts > 0,
               "this configuration livelocks a rejoining station: with "
               "compressed time enabled (theta_factor > 0) and "
               "max_empty_tts == 0 an epoch can produce unbounded silence "
               "streaks, so no silence streak certifies 'no epoch in "
               "progress'; set max_empty_tts > 0 (bounds the empty-TTs "
               "chain) or theta_factor = 0");
}

std::int64_t DdcrConfig::resync_silence_threshold() const {
  validate_rejoinable();
  // Longest silent run a live epoch can produce: the remaining (all-silent)
  // DFS stacks of a nested static + time search, plus the capped chain of
  // empty time tree searches, plus one slot of margin.
  const std::int64_t time_stack =
      (m_time - 1) * util::ilog_floor(m_time, F) + 1;
  const std::int64_t static_stack =
      (m_static - 1) * util::ilog_floor(m_static, q) + 1;
  const std::int64_t empty_chains =
      static_cast<std::int64_t>(max_empty_tts) * m_time;
  return time_stack + static_stack + empty_chains + 2;
}

Duration DdcrConfig::class_width_for(Duration max_deadline, std::int64_t F,
                                     int margin_percent) {
  HRTDM_EXPECT(max_deadline > Duration::nanoseconds(0),
               "max deadline must be positive");
  HRTDM_EXPECT(F >= 2, "need at least two time-tree leaves");
  HRTDM_EXPECT(margin_percent >= 100, "margin must be at least 100%");
  const std::int64_t target_ns =
      util::ceil_div(max_deadline.ns() * margin_percent, 100);
  return Duration::nanoseconds(util::ceil_div(target_ns, F));
}

}  // namespace hrtdm::core
