// Fixed TDMA round-robin: station i may transmit only in slots where
// round_counter % z == i. Collision-free by construction and trivially
// analysable, but pays an entire silent round for every idle owner — the
// latency/utilisation foil to contention protocols in the comparison bench.
#pragma once

#include <cstdint>
#include <optional>

#include "core/edf_queue.hpp"
#include "net/station.hpp"
#include "traffic/message.hpp"

namespace hrtdm::baseline {

using core::EdfQueue;
using net::Frame;
using net::SlotObservation;
using traffic::Message;
using util::SimTime;

class TdmaStation final : public net::Station {
 public:
  TdmaStation(int id, int stations);

  void enqueue(const Message& msg) { queue_.push(msg); }

  int id() const override { return id_; }
  std::optional<Frame> poll_intent(SimTime now) override;
  void observe(const SlotObservation& obs) override;

  const EdfQueue& queue() const { return queue_; }

 private:
  int id_;
  int stations_;
  std::int64_t round_ = 0;  ///< slot counter, identical at all stations
  EdfQueue queue_;
};

}  // namespace hrtdm::baseline
