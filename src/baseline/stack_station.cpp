#include "baseline/stack_station.hpp"

#include "util/check.hpp"

namespace hrtdm::baseline {

StackStation::StackStation(int id, std::uint64_t seed)
    : id_(id), rng_(seed) {
  HRTDM_EXPECT(id >= 0, "station id must be non-negative");
}

Frame StackStation::make_frame(const Message& msg) const {
  Frame frame;
  frame.source = id_;
  frame.msg_uid = msg.uid;
  frame.class_id = msg.class_id;
  frame.l_bits = msg.l_bits;
  frame.enqueue_time = msg.arrival;
  frame.absolute_deadline = msg.absolute_deadline;
  frame.arb_key = msg.absolute_deadline.ns();
  return frame;
}

std::optional<Frame> StackStation::poll_intent(SimTime now) {
  (void)now;
  attempted_this_slot_ = false;
  if (depth_ > 0) {
    // CRA in progress: only the level-0 participants transmit; blocked
    // newcomers and deeper levels stay silent.
    if (level_ != 0) {
      return std::nullopt;
    }
    const auto head = queue_.head();
    HRTDM_ENSURE(head.has_value(), "participant with an empty queue");
    attempted_this_slot_ = true;
    return make_frame(*head);
  }
  // Free access.
  const auto head = queue_.head();
  if (!head.has_value()) {
    return std::nullopt;
  }
  attempted_this_slot_ = true;
  return make_frame(*head);
}

void StackStation::observe(const SlotObservation& obs) {
  const bool mine = obs.frame.has_value() && obs.frame->source == id_;
  if (obs.kind == net::SlotKind::kSuccess && mine) {
    const bool removed = queue_.remove(obs.frame->msg_uid);
    HRTDM_ENSURE(removed, "delivered frame was not queued");
  }
  if (obs.in_burst) {
    return;  // bursts do not advance resolution state
  }

  if (depth_ == 0) {
    // Free access: a collision opens a CRA; the colliders flip the first
    // coin, everyone else is blocked until the stack drains.
    if (obs.kind == net::SlotKind::kCollision) {
      depth_ = 2;
      ++cra_count_;
      level_ = attempted_this_slot_ ? (rng_.bernoulli(0.5) ? 0 : 1) : -1;
    }
    return;
  }

  switch (obs.kind) {
    case net::SlotKind::kCollision:
      // The top group splits: its members re-flip; deeper groups are
      // pushed down one position.
      ++depth_;
      if (level_ == 0) {
        level_ = rng_.bernoulli(0.5) ? 0 : 1;
      } else if (level_ > 0) {
        ++level_;
      }
      break;
    case net::SlotKind::kSuccess:
    case net::SlotKind::kSilence:
      // The top group is resolved; the stack pops.
      --depth_;
      if (level_ == 0) {
        // My transmission succeeded (a level-0 station alone on top): I
        // leave the CRA; further queued messages wait for free access.
        level_ = -1;
      } else if (level_ > 0) {
        --level_;
      }
      break;
  }
  HRTDM_ENSURE(depth_ >= 0, "stack depth went negative");
  if (depth_ == 0) {
    level_ = -1;
  }
}

}  // namespace hrtdm::baseline
