// One harness to run any of the four MAC protocols on the same workload,
// channel model and metrics — the engine behind the protocol-comparison
// benches (E10) and the baseline tests.
#pragma once

#include <cstdint>
#include <string>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::baseline {

enum class Protocol { kDdcr, kBeb, kDcr, kTdma, kStack };

std::string protocol_name(Protocol protocol);

struct ProtocolRunOptions {
  core::DdcrRunOptions base;  ///< phy, collision mode, ddcr config, arrivals,
                              ///< horizons, seed (ddcr part used by kDdcr)
  int beb_backoff_cap = 10;
  int dcr_m = 2;
  std::int64_t dcr_q = 64;
  /// Optional ground-truth observer (e.g. check::ConformanceRecorder)
  /// attached to the channel before start() — the hook the differential
  /// safety tests record baseline runs through. Ignored for kDdcr, which
  /// has its own auditor seam (DdcrRunOptions::conformance_check).
  net::ChannelObserver* observer = nullptr;
};

struct ProtocolRunResult {
  Protocol protocol = Protocol::kDdcr;
  core::MetricsSummary metrics;
  net::ChannelStats channel;
  std::int64_t generated = 0;
  std::int64_t undelivered = 0;
  std::int64_t dropped = 0;  ///< BEB only (when max_attempts > 0)
  double utilization = 0.0;
  /// Deadline-miss ratio over generated messages; undelivered messages
  /// count as misses (they are certainly late by the end of the run).
  double miss_ratio() const;
};

ProtocolRunResult run_protocol(Protocol protocol,
                               const traffic::Workload& workload,
                               const ProtocolRunOptions& options);

}  // namespace hrtdm::baseline
