// Standard CSMA-CD with truncated binary exponential backoff (the classic
// Ethernet MAC the paper's deterministic protocol replaces). Local queueing
// is EDF, like CSMA/DDCR, so protocol comparisons isolate the collision-
// resolution policy.
#pragma once

#include <cstdint>
#include <optional>

#include "core/edf_queue.hpp"
#include "net/station.hpp"
#include "traffic/message.hpp"
#include "util/rng.hpp"

namespace hrtdm::baseline {

using core::EdfQueue;
using net::Frame;
using net::SlotObservation;
using traffic::Message;
using util::SimTime;

class BebStation final : public net::Station {
 public:
  struct Config {
    /// Backoff window cap: window = 2^min(attempts, cap) - 1 slots.
    int backoff_cap = 10;
    /// Attempts after which a frame is dropped (0 = never drop; HRTDM
    /// semantics favour late delivery over loss, so 0 is the default).
    int max_attempts = 0;
  };

  BebStation(int id, Config config, std::uint64_t seed);

  void enqueue(const Message& msg) { queue_.push(msg); }

  int id() const override { return id_; }
  std::optional<Frame> poll_intent(SimTime now) override;
  void observe(const SlotObservation& obs) override;

  const EdfQueue& queue() const { return queue_; }
  std::int64_t dropped() const { return dropped_; }

 private:
  int id_;
  Config config_;
  util::Rng rng_;
  EdfQueue queue_;
  int attempts_ = 0;
  std::int64_t backoff_slots_ = 0;  ///< defer this many more slots
  bool attempted_this_slot_ = false;
  std::int64_t dropped_ = 0;
};

}  // namespace hrtdm::baseline
