#include "baseline/dcr_station.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hrtdm::baseline {

DcrStation::DcrStation(int id, Config config,
                       std::vector<std::int64_t> static_indices)
    : id_(id),
      config_(config),
      my_indices_(std::move(static_indices)),
      engine_(config.m, config.q, config.infer_last_child) {
  HRTDM_EXPECT(id >= 0, "station id must be non-negative");
  HRTDM_EXPECT(!my_indices_.empty(), "a source needs >= 1 static index");
  HRTDM_EXPECT(std::is_sorted(my_indices_.begin(), my_indices_.end()),
               "static indices must be ranked increasing");
  HRTDM_EXPECT(my_indices_.front() >= 0 && my_indices_.back() < config.q,
               "static indices must lie in [0, q)");
}

Frame DcrStation::make_frame(const Message& msg) const {
  Frame frame;
  frame.source = id_;
  frame.msg_uid = msg.uid;
  frame.class_id = msg.class_id;
  frame.l_bits = msg.l_bits;
  frame.enqueue_time = msg.arrival;
  frame.absolute_deadline = msg.absolute_deadline;
  frame.arb_key = msg.absolute_deadline.ns();
  return frame;
}

std::optional<Frame> DcrStation::poll_intent(SimTime now) {
  (void)now;
  const auto head = queue_.head();
  if (!head.has_value()) {
    return std::nullopt;
  }
  if (!engine_.active()) {
    return make_frame(*head);  // plain CSMA-CD while no resolution pending
  }
  if (index_pos_ >= my_indices_.size()) {
    return std::nullopt;  // exhausted my indices for this resolution
  }
  if (!engine_.current().contains(my_indices_[index_pos_])) {
    return std::nullopt;
  }
  return make_frame(*head);
}

void DcrStation::observe(const SlotObservation& obs) {
  const bool mine = obs.frame.has_value() && obs.frame->source == id_;
  if (obs.kind == net::SlotKind::kSuccess && mine) {
    const bool removed = queue_.remove(obs.frame->msg_uid);
    HRTDM_ENSURE(removed, "delivered frame was not queued");
  }
  if (obs.in_burst) {
    return;  // bursts never advance resolution state
  }

  if (!engine_.active()) {
    if (obs.kind == net::SlotKind::kCollision) {
      // Enter deterministic resolution; the collision is the root probe.
      engine_.begin();
      index_pos_ = 0;
    }
    return;
  }

  TreeSearchEngine::Feedback fb;
  switch (obs.kind) {
    case net::SlotKind::kSilence:
      fb = TreeSearchEngine::Feedback::kSilence;
      break;
    case net::SlotKind::kSuccess:
      fb = TreeSearchEngine::Feedback::kSuccess;
      if (mine) {
        ++index_pos_;
      }
      break;
    case net::SlotKind::kCollision:
      fb = TreeSearchEngine::Feedback::kCollision;
      break;
    default:
      HRTDM_ENSURE(false, "unreachable slot kind");
      return;
  }
  const auto probed = engine_.current();
  const auto result = engine_.feedback(fb);
  if (result == TreeSearchEngine::StepResult::kLeafCollision) {
    // Unique indices: only channel noise can collide a leaf — retry it.
    engine_.requeue(probed);
  }
}

}  // namespace hrtdm::baseline
