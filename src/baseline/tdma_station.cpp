#include "baseline/tdma_station.hpp"

#include "util/check.hpp"

namespace hrtdm::baseline {

TdmaStation::TdmaStation(int id, int stations)
    : id_(id), stations_(stations) {
  HRTDM_EXPECT(id >= 0 && id < stations, "station id out of range");
}

std::optional<Frame> TdmaStation::poll_intent(SimTime now) {
  (void)now;
  if (round_ % stations_ != id_) {
    return std::nullopt;
  }
  const auto head = queue_.head();
  if (!head.has_value()) {
    return std::nullopt;
  }
  Frame frame;
  frame.source = id_;
  frame.msg_uid = head->uid;
  frame.class_id = head->class_id;
  frame.l_bits = head->l_bits;
  frame.enqueue_time = head->arrival;
  frame.absolute_deadline = head->absolute_deadline;
  frame.arb_key = head->absolute_deadline.ns();
  return frame;
}

void TdmaStation::observe(const SlotObservation& obs) {
  const bool mine = obs.frame.has_value() && obs.frame->source == id_;
  if (obs.kind == net::SlotKind::kSuccess && mine) {
    const bool removed = queue_.remove(obs.frame->msg_uid);
    HRTDM_ENSURE(removed, "delivered frame was not queued");
  }
  // A collision observation under TDMA can only be channel noise that
  // destroyed the slot owner's frame (ownership is collision-free by
  // construction); the owner keeps the message and retries next round.
  if (!obs.in_burst) {
    ++round_;
  }
}

}  // namespace hrtdm::baseline
