#include "baseline/runner.hpp"

#include <memory>
#include <vector>

#include "baseline/beb_station.hpp"
#include "baseline/dcr_station.hpp"
#include "baseline/stack_station.hpp"
#include "baseline/tdma_station.hpp"
#include "core/ddcr_config.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace hrtdm::baseline {

std::string protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kDdcr: return "CSMA/DDCR";
    case Protocol::kBeb:  return "CSMA-CD/BEB";
    case Protocol::kDcr:  return "CSMA/DCR";
    case Protocol::kTdma: return "TDMA";
    case Protocol::kStack: return "Stack-CRA";
  }
  return "?";
}

double ProtocolRunResult::miss_ratio() const {
  if (generated == 0) {
    return 0.0;
  }
  const std::int64_t late =
      metrics.misses + undelivered + dropped;
  return static_cast<double>(late) / static_cast<double>(generated);
}

namespace {

/// Shared skeleton: builds sim + channel + the given stations, injects the
/// workload, runs with drain, and collects metrics.
template <typename StationT>
ProtocolRunResult run_with_stations(
    Protocol protocol, const traffic::Workload& workload,
    const ProtocolRunOptions& options,
    std::vector<std::unique_ptr<StationT>> stations) {
  sim::Simulator simulator;
  net::BroadcastChannel channel(simulator, options.base.phy,
                                options.base.collision_mode);
  for (auto& station : stations) {
    channel.attach(*station);
  }
  core::MetricsCollector metrics;
  channel.add_observer(metrics);
  if (options.observer != nullptr) {
    channel.add_observer(*options.observer);
  }

  const auto traffic = traffic::generate_traffic(
      workload, options.base.arrivals, options.base.arrival_horizon,
      options.base.seed);
  for (std::size_t s = 0; s < traffic.per_source.size(); ++s) {
    StationT* station = stations[s].get();
    for (const traffic::Message& msg : traffic.per_source[s]) {
      simulator.schedule_at(msg.arrival,
                            [station, msg] { station->enqueue(msg); },
                            "arrival");
    }
  }

  channel.start();
  simulator.run_until(options.base.arrival_horizon);
  auto queued = [&stations] {
    std::int64_t total = 0;
    for (const auto& station : stations) {
      total += static_cast<std::int64_t>(station->queue().size());
    }
    return total;
  };
  const util::Duration drain_step = options.base.phy.slot_x * 1024;
  sim::run_chunked(simulator, drain_step, options.base.drain_cap,
                   [&queued] { return queued() > 0; });
  channel.stop();

  ProtocolRunResult result;
  result.protocol = protocol;
  result.metrics = metrics.summarize();
  result.channel = channel.stats();
  result.generated = traffic.total_messages;
  result.undelivered = queued();
  result.utilization = channel.utilization();
  if constexpr (std::is_same_v<StationT, BebStation>) {
    for (const auto& station : stations) {
      result.dropped += station->dropped();
    }
  }
  return result;
}

}  // namespace

ProtocolRunResult run_protocol(Protocol protocol,
                               const traffic::Workload& workload,
                               const ProtocolRunOptions& options) {
  workload.validate();
  const int z = workload.z();

  switch (protocol) {
    case Protocol::kDdcr: {
      const core::DdcrRunResult ddcr = core::run_ddcr(workload, options.base);
      ProtocolRunResult result;
      result.protocol = protocol;
      result.metrics = ddcr.metrics;
      result.channel = ddcr.channel;
      result.generated = ddcr.generated;
      result.undelivered = ddcr.undelivered;
      result.utilization = ddcr.utilization;
      return result;
    }
    case Protocol::kBeb: {
      std::vector<std::unique_ptr<BebStation>> stations;
      BebStation::Config config;
      config.backoff_cap = options.beb_backoff_cap;
      for (int s = 0; s < z; ++s) {
        stations.push_back(std::make_unique<BebStation>(
            s, config, options.base.seed * 1000003ULL + static_cast<std::uint64_t>(s)));
      }
      return run_with_stations(protocol, workload, options,
                               std::move(stations));
    }
    case Protocol::kDcr: {
      DcrStation::Config config;
      config.m = options.dcr_m;
      config.q = options.dcr_q;
      const auto indices = core::DdcrConfig::one_index_per_source(z, config.q);
      std::vector<std::unique_ptr<DcrStation>> stations;
      for (int s = 0; s < z; ++s) {
        stations.push_back(std::make_unique<DcrStation>(
            s, config, indices[static_cast<std::size_t>(s)]));
      }
      return run_with_stations(protocol, workload, options,
                               std::move(stations));
    }
    case Protocol::kTdma: {
      std::vector<std::unique_ptr<TdmaStation>> stations;
      for (int s = 0; s < z; ++s) {
        stations.push_back(std::make_unique<TdmaStation>(s, z));
      }
      return run_with_stations(protocol, workload, options,
                               std::move(stations));
    }
    case Protocol::kStack: {
      std::vector<std::unique_ptr<StackStation>> stations;
      for (int s = 0; s < z; ++s) {
        stations.push_back(std::make_unique<StackStation>(
            s, options.base.seed * 7919ULL + static_cast<std::uint64_t>(s)));
      }
      return run_with_stations(protocol, workload, options,
                               std::move(stations));
    }
  }
  HRTDM_ENSURE(false, "unreachable protocol");
  return {};
}

}  // namespace hrtdm::baseline
