// CSMA/DCR — the 802.3D protocol of Le Lann & Rolin (section 5): the
// deterministic *static* tree collision resolution that predates CSMA/DDCR.
// On a collision, all sources resolve via an m-ary search over their static
// indices, with no deadline-driven time tree: resolution order is index
// order, not EDF order. CSMA/DDCR's improvement is precisely the TTs layer,
// so DCR is the paper's natural deterministic baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/edf_queue.hpp"
#include "core/tree_search.hpp"
#include "net/station.hpp"
#include "traffic/message.hpp"

namespace hrtdm::baseline {

using core::EdfQueue;
using core::TreeSearchEngine;
using net::Frame;
using net::SlotObservation;
using traffic::Message;
using util::SimTime;

class DcrStation final : public net::Station {
 public:
  struct Config {
    int m = 2;             ///< branching degree (802.3D used binary trees)
    std::int64_t q = 64;   ///< static-tree leaves (power of m, >= z)
    bool infer_last_child = false;  ///< classic last-child skip
  };

  /// `static_indices` is this source's ranked subset of [0, q).
  DcrStation(int id, Config config,
             std::vector<std::int64_t> static_indices);

  void enqueue(const Message& msg) { queue_.push(msg); }

  int id() const override { return id_; }
  std::optional<Frame> poll_intent(SimTime now) override;
  void observe(const SlotObservation& obs) override;

  const EdfQueue& queue() const { return queue_; }
  bool in_resolution() const { return engine_.active(); }
  std::uint64_t protocol_digest() const { return engine_.digest(); }

 private:
  Frame make_frame(const Message& msg) const;

  int id_;
  Config config_;
  std::vector<std::int64_t> my_indices_;
  EdfQueue queue_;
  TreeSearchEngine engine_;
  std::size_t index_pos_ = 0;  ///< next of my indices usable this search
};

}  // namespace hrtdm::baseline
