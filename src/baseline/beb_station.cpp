#include "baseline/beb_station.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::baseline {

BebStation::BebStation(int id, Config config, std::uint64_t seed)
    : id_(id), config_(config), rng_(seed) {
  HRTDM_EXPECT(id >= 0, "station id must be non-negative");
  HRTDM_EXPECT(config.backoff_cap >= 1 && config.backoff_cap <= 20,
               "backoff cap out of range");
  HRTDM_EXPECT(config.max_attempts >= 0, "max_attempts cannot be negative");
}

std::optional<Frame> BebStation::poll_intent(SimTime now) {
  (void)now;
  attempted_this_slot_ = false;
  if (backoff_slots_ > 0) {
    return std::nullopt;  // deferring
  }
  const auto head = queue_.head();
  if (!head.has_value()) {
    return std::nullopt;
  }
  attempted_this_slot_ = true;
  Frame frame;
  frame.source = id_;
  frame.msg_uid = head->uid;
  frame.class_id = head->class_id;
  frame.l_bits = head->l_bits;
  frame.enqueue_time = head->arrival;
  frame.absolute_deadline = head->absolute_deadline;
  frame.arb_key = head->absolute_deadline.ns();
  return frame;
}

void BebStation::observe(const SlotObservation& obs) {
  const bool mine = obs.frame.has_value() && obs.frame->source == id_;
  if (obs.kind == net::SlotKind::kSuccess && mine) {
    const bool removed = queue_.remove(obs.frame->msg_uid);
    HRTDM_ENSURE(removed, "delivered frame was not queued");
    attempts_ = 0;
    return;
  }
  if (obs.kind == net::SlotKind::kCollision && attempted_this_slot_) {
    ++attempts_;
    if (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) {
      // Ethernet gives up; HRTDM never would, but the policy is modelled
      // for comparison honesty.
      if (const auto head = queue_.head()) {
        queue_.remove(head->uid);
        ++dropped_;
      }
      attempts_ = 0;
      backoff_slots_ = 0;
      return;
    }
    const int exponent = std::min(attempts_, config_.backoff_cap);
    const std::int64_t window = util::ipow(2, exponent) - 1;
    backoff_slots_ = window > 0 ? rng_.uniform_i64(0, window) : 0;
    return;
  }
  // Any other slot outcome lets a deferring station count down.
  if (backoff_slots_ > 0) {
    --backoff_slots_;
  }
}

}  // namespace hrtdm::baseline
