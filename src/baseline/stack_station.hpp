// The classic randomized (Capetanakis / Tsybakov-Mikhailov) binary stack
// collision-resolution algorithm with blocked access — the probabilistic
// tree protocol family analysed by the random-access literature the paper
// cites ([15]-[19]). CSMA/DDCR replaces the coin flips with deterministic
// index splits; this baseline quantifies what that determinism buys
// (bounded worst case) and costs (no statistical early-exit).
//
// Distributed state per station, driven by the shared channel feedback:
//  - depth: the replicated stack size. The collision that starts a CRA
//    leaves two pending groups (depth = 2); every further collision splits
//    the top group (+1); every success/silence resolves it (-1); the CRA
//    ends at depth = 0.
//  - level: this station's position in the stack (participants only).
//    Level 0 transmits; on a collision the level-0 stations flip a fair
//    coin to stay on top or drop to level 1 while everyone deeper is
//    pushed down; on success/silence everyone moves up one.
//  - Blocked access: messages arriving during a CRA wait for it to end.
#pragma once

#include <cstdint>
#include <optional>

#include "core/edf_queue.hpp"
#include "net/station.hpp"
#include "traffic/message.hpp"
#include "util/rng.hpp"

namespace hrtdm::baseline {

using core::EdfQueue;
using net::Frame;
using net::SlotObservation;
using traffic::Message;
using util::SimTime;

class StackStation final : public net::Station {
 public:
  StackStation(int id, std::uint64_t seed);

  void enqueue(const Message& msg) { queue_.push(msg); }

  int id() const override { return id_; }
  std::optional<Frame> poll_intent(SimTime now) override;
  void observe(const SlotObservation& obs) override;

  const EdfQueue& queue() const { return queue_; }
  bool in_cra() const { return depth_ > 0; }
  std::int64_t cra_count() const { return cra_count_; }

 private:
  Frame make_frame(const Message& msg) const;

  int id_;
  util::Rng rng_;
  EdfQueue queue_;
  std::int64_t depth_ = 0;       ///< replicated stack size (0 = no CRA)
  std::int64_t level_ = -1;      ///< my stack level; -1 = not participating
  bool attempted_this_slot_ = false;
  std::int64_t cra_count_ = 0;   ///< resolutions initiated (diagnostics)
};

}  // namespace hrtdm::baseline
