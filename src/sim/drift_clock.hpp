// Per-station clock drift.
//
// The paper's synchrony assumption is that a channel-state transition
// triggered at t is seen everywhere before t + x/2: every station samples
// slot boundaries within half a slot of true time. A DriftClock models one
// station's violation budget against that assumption as a bounded phase
// error
//
//   phi(t) = clamp(initial_phase + rate_ppm * 1e-6 * (t - anchor), ±bound)
//
// i.e. a fixed skew plus a linear drift that saturates at a hardware bound
// (crystal spec). The fault layer mis-samples a station's observations
// whenever |phi| reaches x/2 — the boundary disagreement the paper's
// proofs exclude — and re-anchors the clock (resync()) when the divergence
// watchdog quarantines the station, modeling the clock resynchronisation a
// real implementation performs on rejoin. The model is fully deterministic:
// it draws no random numbers, so enabling drift cannot perturb any pinned
// RNG stream.
#pragma once

#include "util/simtime.hpp"

namespace hrtdm::sim {

using util::Duration;
using util::SimTime;

class DriftClock {
 public:
  DriftClock() = default;
  DriftClock(Duration initial_phase, double rate_ppm, Duration bound)
      : phase_at_anchor_(initial_phase), rate_ppm_(rate_ppm), bound_(bound) {}

  /// Phase error at `now`, clamped to [-bound, +bound]. bound <= 0 means
  /// unclamped.
  Duration phase_error(SimTime now) const {
    const double drifted_ns =
        static_cast<double>(phase_at_anchor_.ns()) +
        rate_ppm_ * 1e-6 * static_cast<double>((now - anchor_).ns());
    Duration phase = Duration::nanoseconds(static_cast<std::int64_t>(
        drifted_ns >= 0 ? drifted_ns + 0.5 : drifted_ns - 0.5));
    if (bound_.ns() > 0) {
      if (phase > bound_) {
        phase = bound_;
      } else if (phase < -bound_) {
        phase = -bound_;
      }
    }
    return phase;
  }

  /// True when the phase error at `now` breaks the x/2 synchrony
  /// assumption: the station samples the slot boundary on the wrong side.
  bool missamples(SimTime now, Duration slot_x) const {
    const Duration phase = phase_error(now);
    const Duration magnitude = phase.is_negative() ? -phase : phase;
    return magnitude * 2 >= slot_x;
  }

  /// Clock resynchronisation: zero the phase and re-anchor at `now`. The
  /// residual rate keeps drifting afterwards — resync corrects phase, not
  /// frequency.
  void resync(SimTime now) {
    phase_at_anchor_ = Duration::nanoseconds(0);
    anchor_ = now;
  }

  double rate_ppm() const { return rate_ppm_; }
  Duration bound() const { return bound_; }

  /// Largest |phase| ever reachable (for static benignity analysis): the
  /// clamp bound when the clock has a rate, else the initial phase.
  Duration sup_phase() const {
    const Duration initial = phase_at_anchor_.is_negative() ? -phase_at_anchor_
                                                            : phase_at_anchor_;
    if (rate_ppm_ == 0.0) {
      return initial;
    }
    return bound_.ns() > 0 && bound_ > initial ? bound_ : initial;
  }

 private:
  Duration phase_at_anchor_;
  double rate_ppm_ = 0.0;
  Duration bound_;
  SimTime anchor_;
};

}  // namespace hrtdm::sim
