#include "sim/simulator.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace hrtdm::sim {

EventHandle Simulator::schedule_at(SimTime at, Callback fn, std::string label) {
  HRTDM_EXPECT(at >= now_, "cannot schedule into the past");
  HRTDM_EXPECT(static_cast<bool>(fn), "event callback must be callable");
  const std::uint64_t seq = next_seq_++;
  pending_.emplace(seq, Event{at, seq, std::move(fn), std::move(label)});
  queue_.push(QueueEntry{at, seq});
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn,
                                      std::string label) {
  HRTDM_EXPECT(!delay.is_negative(), "delay cannot be negative");
  return schedule_at(now_ + delay, std::move(fn), std::move(label));
}

bool Simulator::cancel(EventHandle handle) {
  if (handle.is_null()) {
    return false;
  }
  return pending_.erase(handle.seq_) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = pending_.find(entry.seq);
    if (it == pending_.end()) {
      continue;  // tombstone of a cancelled event
    }
    Event event = std::move(it->second);
    pending_.erase(it);
    HRTDM_ENSURE(event.at >= now_, "event queue went backwards in time");
    now_ = event.at;
    ++events_fired_;
    if (!event.label.empty()) {
      HRTDM_LOG(kTrace) << event.at.str() << " fire: " << event.label;
    }
    event.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty()) {
    // Peek past tombstones without firing.
    const QueueEntry entry = queue_.top();
    if (pending_.find(entry.seq) == pending_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.at > horizon) {
      break;
    }
    step();
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace hrtdm::sim
