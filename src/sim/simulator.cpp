#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace hrtdm::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t index = free_head_;
    free_head_ = pool_[index].next_free;
    return index;
  }
  HRTDM_ENSURE(pool_.size() < kNullIndex, "event pool exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Event& event = pool_[index];
  event.seq = 0;
  event.fn.reset();
  event.label = nullptr;
  event.next_free = free_head_;
  free_head_ = index;
  --live_events_;
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn,
                                   const char* label) {
  HRTDM_EXPECT(at >= now_, "cannot schedule into the past");
  HRTDM_EXPECT(static_cast<bool>(fn), "event callback must be callable");
  if (!watchers_.empty()) {
    notify_watchers(at);
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t index = acquire_slot();
  Event& event = pool_[index];
  event.at = at;
  event.seq = seq;
  event.fn = std::move(fn);
  event.label = label;
  ++live_events_;
  queue_.push(QueueEntry{at, seq, index});
  return EventHandle{index, seq};
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn,
                                      const char* label) {
  HRTDM_EXPECT(!delay.is_negative(), "delay cannot be negative");
  return schedule_at(now_ + delay, std::move(fn), label);
}

bool Simulator::cancel(EventHandle handle) {
  if (handle.is_null() || handle.index_ >= pool_.size()) {
    return false;
  }
  if (pool_[handle.index_].seq != handle.seq_) {
    return false;  // already fired, already cancelled, or slot recycled
  }
  // The heap entry stays behind as a tombstone; the sequence mismatch makes
  // step()/run_until()/next_event_time() discard it on pop.
  release_slot(handle.index_);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    if (!live(entry)) {
      continue;  // tombstone of a cancelled event
    }
    Event& event = pool_[entry.index];
    HRTDM_ENSURE(event.at >= now_, "event queue went backwards in time");
    now_ = event.at;
    ++events_fired_;
    if (event.label != nullptr &&
        util::log_level() <= util::LogLevel::kTrace) {
      HRTDM_LOG(kTrace) << event.at.str() << " fire: " << event.label;
    }
    // Move the callback out and free the slot BEFORE invoking: the callback
    // may schedule new events, which can recycle this slot or grow the pool
    // (invalidating `event`).
    InlineCallback fn = std::move(event.fn);
    release_slot(entry.index);
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty()) {
    // Peek past tombstones without firing.
    const QueueEntry& entry = queue_.top();
    if (!live(entry)) {
      queue_.pop();
      continue;
    }
    if (entry.at > horizon) {
      break;
    }
    step();
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

void Simulator::add_schedule_watcher(ScheduleWatcher* watcher,
                                     SimTime horizon) {
  HRTDM_EXPECT(watcher != nullptr, "null schedule watcher");
  watchers_.push_back(WatchEntry{watcher, horizon});
}

void Simulator::remove_schedule_watcher(ScheduleWatcher* watcher) {
  for (std::size_t i = 0; i < watchers_.size(); ++i) {
    if (watchers_[i].watcher == watcher) {
      watchers_[i] = watchers_.back();
      watchers_.pop_back();
      return;
    }
  }
}

void Simulator::notify_watchers(SimTime at) {
  // Unregister every triggered watcher before invoking any of them: the
  // callbacks typically call schedule_at themselves, and must not
  // re-trigger (cold path — the local vector allocation is acceptable).
  std::vector<ScheduleWatcher*> triggered;
  for (std::size_t i = 0; i < watchers_.size();) {
    if (at < watchers_[i].horizon) {
      triggered.push_back(watchers_[i].watcher);
      watchers_[i] = watchers_.back();
      watchers_.pop_back();
    } else {
      ++i;
    }
  }
  for (ScheduleWatcher* watcher : triggered) {
    watcher->on_early_schedule(at);
  }
}

SimTime Simulator::next_event_time() {
  while (!queue_.empty()) {
    const QueueEntry& entry = queue_.top();
    if (!live(entry)) {
      queue_.pop();
      continue;
    }
    return entry.at;
  }
  return SimTime::infinity();
}

}  // namespace hrtdm::sim
