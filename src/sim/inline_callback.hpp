// Small-buffer-optimized move-only callback for the event loop.
//
// std::function<void()> heap-allocates for any capture beyond two or three
// pointers, which puts one malloc/free pair on every scheduled event. The
// simulator's callbacks are overwhelmingly small — `[this]` continuations
// and `[station, msg]` arrival deliveries — so InlineCallback stores up to
// kInlineSize bytes in place and only falls back to the heap for genuinely
// large closures. Move-only (no copy) keeps the dispatch table to three
// entries and matches how the event pool uses it: constructed once at
// schedule time, moved out once at fire time.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hrtdm::sim {

class InlineCallback {
 public:
  /// Large enough for an arrival closure (a Station* plus a Message by
  /// value) — the biggest callback the steady-state paths schedule.
  static constexpr std::size_t kInlineSize = 64;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heap_ops<Fn>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

  /// Destroys the stored callable (if any); *this becomes empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Relocates storage into `to` and leaves the source destroyed.
    void (*relocate)(void* to, void* from) noexcept;
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
        [](void* to, void* from) noexcept {
          Fn* src = std::launder(reinterpret_cast<Fn*>(from));
          ::new (to) Fn(std::move(*src));
          src->~Fn();
        },
        [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* storage) {
          (**std::launder(reinterpret_cast<Fn**>(storage)))();
        },
        [](void* to, void* from) noexcept {
          ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
        },
        [](void* storage) {
          delete *std::launder(reinterpret_cast<Fn**>(storage));
        },
    };
    return &ops;
  }

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hrtdm::sim
