// Discrete-event simulation engine.
//
// A single-threaded event loop with a stable priority queue: events at equal
// timestamps fire in scheduling order, which the broadcast-channel model
// relies on for deterministic slot processing. Handles are returned so
// scheduled events can be cancelled (e.g. a station abandoning a planned
// retransmission when the channel state changes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/simtime.hpp"

namespace hrtdm::sim {

using util::Duration;
using util::SimTime;

/// Identifies a scheduled event for cancellation. Default-constructed
/// handles are null.
class EventHandle {
 public:
  EventHandle() = default;
  bool is_null() const { return seq_ == 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be passed to cancel(). `label` shows up in traces only.
  EventHandle schedule_at(SimTime at, Callback fn, std::string label = {});

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn,
                             std::string label = {});

  /// Cancels a pending event; cancelling an already-fired or null handle is
  /// a no-op. Returns true if something was cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue drains or the horizon is passed, whichever comes
  /// first. Events exactly at the horizon still fire; afterwards now() is
  /// at least the horizon.
  void run_until(SimTime horizon);

  /// Runs until the queue is empty. The caller must guarantee termination.
  void run_to_completion();

  /// Fires at most one event; returns false when the queue is empty.
  bool step();

  std::uint64_t events_fired() const { return events_fired_; }
  std::size_t events_pending() const { return pending_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq = 0;  // tie-break: FIFO at equal timestamps
    Callback fn;
    std::string label;
  };
  struct QueueEntry {
    SimTime at;
    std::uint64_t seq;
  };
  struct EntryOrder {
    // std::priority_queue is a max-heap; invert for earliest-first, with
    // FIFO tie-breaking on the sequence number.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_fired_ = 0;
  // Cancellation removes from `pending_`; the queue entry becomes a
  // tombstone skipped on pop.
  std::unordered_map<std::uint64_t, Event> pending_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryOrder> queue_;
};

}  // namespace hrtdm::sim
