// Discrete-event simulation engine.
//
// A single-threaded event loop with a stable priority queue: events at equal
// timestamps fire in scheduling order, which the broadcast-channel model
// relies on for deterministic slot processing. Handles are returned so
// scheduled events can be cancelled (e.g. a station abandoning a planned
// retransmission when the channel state changes).
//
// Steady-state scheduling is allocation-free: events live in a free-list
// pool indexed by the heap entries, callbacks are stored in a
// small-buffer-optimized InlineCallback (no heap for closures up to 64
// bytes), and labels are plain string literals only rendered when the log
// level admits kTrace. Cancellation invalidates the pool slot's sequence
// tag; the heap entry becomes a tombstone skipped on pop, and a recycled
// slot can never resurrect a cancelled event because sequence numbers are
// never reused.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/simtime.hpp"

namespace hrtdm::sim {

using util::Duration;
using util::SimTime;

/// Identifies a scheduled event for cancellation. Default-constructed
/// handles are null.
class EventHandle {
 public:
  EventHandle() = default;
  bool is_null() const { return seq_ == 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t index, std::uint64_t seq)
      : index_(index), seq_(seq) {}
  std::uint32_t index_ = 0;
  std::uint64_t seq_ = 0;  ///< unique per schedule; 0 = null
};

/// Notified when an event is scheduled earlier than a registered horizon.
/// Used by the channel's idle fast-forward: a committed idle gap assumes no
/// event will appear inside it, and this hook is how that assumption is
/// revalidated when code outside the event loop (a testbed injecting a
/// message between run() calls) schedules into the gap.
class ScheduleWatcher {
 public:
  virtual ~ScheduleWatcher() = default;
  /// Invoked from schedule_at BEFORE the triggering event takes its
  /// sequence number, so anything the watcher schedules here fires first
  /// at equal timestamps. The watcher is unregistered before the call.
  virtual void on_early_schedule(SimTime at) = 0;
};

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be passed to cancel(). `label` must be a string literal (or
  /// otherwise outlive the event); it is only rendered when the log level
  /// admits kTrace.
  EventHandle schedule_at(SimTime at, Callback fn,
                          const char* label = nullptr);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn,
                             const char* label = nullptr);

  /// Cancels a pending event; cancelling an already-fired or null handle is
  /// a no-op. Returns true if something was cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue drains or the horizon is passed, whichever comes
  /// first. Events exactly at the horizon still fire; afterwards now() is
  /// at least the horizon.
  void run_until(SimTime horizon);

  /// Runs until the queue is empty. The caller must guarantee termination.
  void run_to_completion();

  /// Fires at most one event; returns false when the queue is empty.
  bool step();

  /// Timestamp of the earliest pending event, or SimTime::infinity() when
  /// none is scheduled. Non-destructive apart from discarding tombstones
  /// of cancelled events.
  SimTime next_event_time();

  std::uint64_t events_fired() const { return events_fired_; }
  std::size_t events_pending() const { return live_events_; }

  /// Registers `watcher` to be notified (once, and then unregistered) the
  /// next time an event is scheduled at a time strictly below `horizon`.
  void add_schedule_watcher(ScheduleWatcher* watcher, SimTime horizon);
  /// Unregisters without notifying; unknown watchers are ignored.
  void remove_schedule_watcher(ScheduleWatcher* watcher);

 private:
  static constexpr std::uint32_t kNullIndex = UINT32_MAX;

  struct Event {
    SimTime at;
    std::uint64_t seq = 0;  ///< 0 while the pool slot is free
    InlineCallback fn;
    const char* label = nullptr;
    std::uint32_t next_free = kNullIndex;
  };
  struct QueueEntry {
    SimTime at;
    std::uint64_t seq;  ///< FIFO tie-break at equal timestamps
    std::uint32_t index;
  };
  struct EntryOrder {
    // std::priority_queue is a max-heap; invert for earliest-first, with
    // FIFO tie-breaking on the sequence number.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  struct WatchEntry {
    ScheduleWatcher* watcher;
    SimTime horizon;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void notify_watchers(SimTime at);
  /// True when the heap entry still refers to a live (uncancelled,
  /// unfired) event.
  bool live(const QueueEntry& entry) const {
    return pool_[entry.index].seq == entry.seq;
  }

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_fired_ = 0;
  std::size_t live_events_ = 0;
  std::vector<Event> pool_;
  std::uint32_t free_head_ = kNullIndex;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryOrder> queue_;
  std::vector<WatchEntry> watchers_;
};

/// Runs the classic chunked polling loop
///     while (cond() && sim.now() < cap) sim.run_until(sim.now() + step);
/// with identical observable behaviour (same events fired, same final
/// now(), same chunk boundaries at which cond() is sampled) but without
/// per-chunk wakeups across event-free spans: cond() can only change when
/// an event fires, so chunks containing no events are jumped in one
/// run_until straight to the chunk boundary that first reaches the next
/// scheduled event or the cap.
template <typename Cond>
void run_chunked(Simulator& sim, Duration step, SimTime cap, Cond&& cond) {
  while (cond() && sim.now() < cap) {
    const std::int64_t to_cap = (cap - sim.now()).ceil_div(step);
    std::int64_t chunks = to_cap;
    const SimTime next = sim.next_event_time();
    if (next != SimTime::infinity()) {
      const Duration gap = next - sim.now();
      if (gap.ns() > 0) {
        chunks = std::min(chunks, gap.ceil_div(step));
      } else {
        chunks = 1;  // an event is due at now(): take a single plain chunk
      }
    }
    sim.run_until(sim.now() + step * std::max<std::int64_t>(1, chunks));
  }
}

}  // namespace hrtdm::sim
