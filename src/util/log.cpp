#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace hrtdm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace hrtdm::util
