#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace hrtdm::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// HRTDM_LOG_LEVEL, case-insensitive: trace|debug|info|warn|warning|error.
/// Unset or unrecognized values keep the kInfo default.
LogLevel initial_level() {
  const char* env = std::getenv("HRTDM_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "trace") return LogLevel::kTrace;
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn" || value == "warning") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

/// Function-local static so the environment is read exactly once, at first
/// use — safe from any static initializer that logs.
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace hrtdm::util
