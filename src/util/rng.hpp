// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (jittered arrivals, BEB
// backoff draws, adversary placement choices) draws from an explicitly
// seeded generator so that every experiment is reproducible bit-for-bit.
// Xoshiro256** is used for streams, SplitMix64 for seeding and for cheap
// one-shot hashes.
#pragma once

#include <cstdint>
#include <vector>

namespace hrtdm::util {

/// SplitMix64: single-state mixer; good for seeding and hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential with the given rate (events per unit); rate > 0.
  double exponential(double rate);

  /// True with probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::int64_t> permutation(std::int64_t n);

  /// A decorrelated child generator (for per-station streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace hrtdm::util
