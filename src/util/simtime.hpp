// Strongly-typed simulation time.
//
// All simulator-side quantities are integer nanoseconds: at Gigabit Ethernet
// speed one bit lasts exactly 1 ns, so every quantity in the paper (slot time
// x = 4.096 us, transmission time l'/psi, deadline d, window w) is exactly
// representable. The analysis layer works in double seconds instead; the
// to_seconds()/from_seconds() converters bridge the two.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hrtdm::util {

/// A length of simulated time (may be negative in intermediate arithmetic).
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Rounds to the nearest nanosecond.
  static Duration from_seconds(double s);

  constexpr std::int64_t ns() const { return ns_; }
  double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t f) const { return Duration{ns_ * f}; }
  constexpr Duration operator/(std::int64_t f) const { return Duration{ns_ / f}; }
  /// Integer ratio, rounding down. `o` must be positive.
  std::int64_t floor_div(Duration o) const;
  /// Integer ratio, rounding up. `o` must be positive.
  std::int64_t ceil_div(Duration o) const;
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an adaptive unit, e.g. "4.096us".
  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock (ns since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime zero() { return SimTime{0}; }
  /// A sentinel later than every reachable instant.
  static constexpr SimTime infinity() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t ns() const { return ns_; }
  double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr SimTime operator+(Duration d) const { return SimTime{ns_ + d.ns()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{ns_ - d.ns()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace hrtdm::util
