#include "util/math.hpp"

#include <limits>

#include "util/check.hpp"

namespace hrtdm::util {

std::int64_t ipow(std::int64_t m, std::int64_t e) {
  HRTDM_EXPECT(m >= 1, "ipow base must be >= 1");
  HRTDM_EXPECT(e >= 0, "ipow exponent must be >= 0");
  std::int64_t result = 1;
  for (std::int64_t i = 0; i < e; ++i) {
    HRTDM_EXPECT(result <= std::numeric_limits<std::int64_t>::max() / m,
                 "ipow overflow");
    result *= m;
  }
  return result;
}

bool is_power_of(std::int64_t m, std::int64_t x) {
  HRTDM_EXPECT(m >= 2, "is_power_of base must be >= 2");
  if (x < 1) {
    return false;
  }
  while (x % m == 0) {
    x /= m;
  }
  return x == 1;
}

std::int64_t ilog_floor(std::int64_t m, std::int64_t x) {
  HRTDM_EXPECT(m >= 2, "ilog_floor base must be >= 2");
  HRTDM_EXPECT(x >= 1, "ilog_floor argument must be >= 1");
  std::int64_t e = 0;
  std::int64_t cur = 1;
  while (cur <= x / m) {
    cur *= m;
    ++e;
  }
  // cur = m^e <= x and m^{e+1} > x (the loop guard uses division to avoid
  // overflow: cur <= x/m  <=>  cur*m <= x for positive integers).
  return e;
}

std::int64_t ilog_ceil(std::int64_t m, std::int64_t x) {
  HRTDM_EXPECT(m >= 2, "ilog_ceil base must be >= 2");
  HRTDM_EXPECT(x >= 1, "ilog_ceil argument must be >= 1");
  std::int64_t e = ilog_floor(m, x);
  return ipow(m, e) == x ? e : e + 1;
}

std::int64_t ilog_floor_rational(std::int64_t m, std::int64_t num,
                                 std::int64_t den) {
  HRTDM_EXPECT(m >= 2, "ilog_floor_rational base must be >= 2");
  HRTDM_EXPECT(num >= 1 && den >= 1, "ilog_floor_rational needs num, den >= 1");
  if (num >= den) {
    // Largest e >= 0 with den * m^e <= num.
    std::int64_t e = 0;
    std::int64_t cur = den;
    // Loop guard uses division so cur * m never overflows; for positive
    // integers cur <= num/m (integer division) <=> cur*m <= num.
    while (cur <= num / m) {
      cur *= m;
      ++e;
    }
    return e;
  }
  // num < den: smallest j >= 1 with num * m^j >= den gives e = -j.
  std::int64_t j = 0;
  std::int64_t cur = num;
  while (cur < den) {
    HRTDM_EXPECT(cur <= std::numeric_limits<std::int64_t>::max() / m,
                 "ilog_floor_rational overflow");
    cur *= m;
    ++j;
  }
  return -j;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  HRTDM_EXPECT(b > 0, "ceil_div divisor must be positive");
  std::int64_t q = a / b;
  if (a % b != 0 && a > 0) {
    ++q;
  }
  return q;
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  HRTDM_EXPECT(b > 0, "floor_div divisor must be positive");
  std::int64_t q = a / b;
  if (a % b != 0 && a < 0) {
    --q;
  }
  return q;
}

std::int64_t binomial(std::int64_t n, std::int64_t k) {
  HRTDM_EXPECT(n >= 0, "binomial needs n >= 0");
  if (k < 0 || k > n) {
    return 0;
  }
  if (k > n - k) {
    k = n - k;
  }
  std::int64_t result = 1;
  for (std::int64_t i = 1; i <= k; ++i) {
    HRTDM_EXPECT(result <= std::numeric_limits<std::int64_t>::max() / (n - k + i),
                 "binomial overflow");
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace hrtdm::util
