// Minimal leveled logger.
//
// The simulator can emit very fine-grained traces (one line per slot); the
// level gate keeps example/bench binaries quiet by default while tests can
// crank verbosity for debugging.
#pragma once

#include <sstream>
#include <string>

namespace hrtdm::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global level; messages below it are discarded. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[level] message".
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) {
      log_line(level_, oss_.str());
    }
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (level_ >= log_level()) {
      oss_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace hrtdm::util

#define HRTDM_LOG(level) \
  ::hrtdm::util::detail::LogMessage(::hrtdm::util::LogLevel::level)
