#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/event_tracer.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hrtdm::util {

namespace {

// Pool trace events live on their own Perfetto process (the protocol pids
// are channel ids) and use host wall-clock nanoseconds since the first
// batch, not simulated time — the pool runs outside the simulation.
constexpr std::int32_t kPoolTracePid = 1'000'000;

std::int64_t pool_trace_clock_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point base = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              base)
      .count();
}

struct Failure {
  std::int64_t index = -1;  // -1: no exception on this worker
  std::exception_ptr error;
};

/// Runs the static slice {start, start+stride, ...} < n, attempting every
/// task and keeping only the first (lowest-index) exception.
Failure run_slice(std::int64_t start, std::int64_t stride, std::int64_t n,
                  const std::function<void(std::int64_t)>& fn) {
  Failure failure;
  for (std::int64_t i = start; i < n; i += stride) {
    try {
      fn(i);
    } catch (...) {
      if (failure.index < 0) {
        failure = {i, std::current_exception()};
      }
    }
  }
  return failure;
}

/// Rethrows the lowest-index failure of a batch, if any.
void rethrow_first(const std::vector<Failure>& failures) {
  const Failure* first = nullptr;
  for (const Failure& failure : failures) {
    if (failure.index >= 0 &&
        (first == nullptr || failure.index < first->index)) {
      first = &failure;
    }
  }
  if (first != nullptr) {
    std::rethrow_exception(first->error);
  }
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  std::vector<std::thread> workers;

  // Batch state, guarded by mu. `generation` bumps once per batch so a
  // worker never re-runs a batch it has already seen.
  std::uint64_t generation = 0;
  bool stop = false;
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  int remaining = 0;
  std::vector<Failure> failures;

  // Serialises concurrent for_index() callers.
  std::mutex submit_mu;
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl),
      threads_(threads <= 0 ? hardware_threads() : threads) {
  impl_->failures.resize(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    impl_->workers.emplace_back([this, w] {
      Impl& impl = *impl_;
      std::uint64_t seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> lock(impl.mu);
        impl.work_ready.wait(
            lock, [&] { return impl.stop || impl.generation != seen; });
        if (impl.stop) {
          return;
        }
        seen = impl.generation;
        const std::int64_t n = impl.n;
        const auto* fn = impl.fn;
        lock.unlock();

        const std::int64_t t0 = pool_trace_clock_ns();
        Failure failure = run_slice(w, threads_, n, *fn);
        const std::int64_t t1 = pool_trace_clock_ns();

        // Worker w owns the static slice {w, w+T, ...} < n.
        const std::int64_t slice_tasks =
            w < n ? (n - w + threads_ - 1) / threads_ : 0;
        HRTDM_COUNT_N("pool.worker_tasks", slice_tasks);
        HRTDM_OBSERVE("pool.worker_busy_us", (t1 - t0) / 1000);
        auto& tracer = obs::EventTracer::global();
        if (tracer.enabled()) {
          tracer.set_process_name(kPoolTracePid, "thread pool");
          tracer.set_thread_name(kPoolTracePid, w,
                                 "worker " + std::to_string(w));
          tracer.complete(kPoolTracePid, w, t0, t1 - t0, "pool-slice",
                          "worker,tasks,batch", w, slice_tasks,
                          static_cast<std::int64_t>(seen));
        }

        lock.lock();
        impl.failures[static_cast<std::size_t>(w)] = failure;
        if (--impl.remaining == 0) {
          impl.batch_done.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& worker : impl_->workers) {
    worker.join();
  }
  delete impl_;
}

void ThreadPool::for_index(std::int64_t n,
                           const std::function<void(std::int64_t)>& fn) {
  HRTDM_EXPECT(n >= 0, "task count must be non-negative");
  if (n == 0) {
    return;
  }
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mu);
  HRTDM_COUNT("pool.batches");
  HRTDM_COUNT_N("pool.tasks", n);
  HRTDM_OBSERVE("pool.batch_tasks", n);
  const std::int64_t batch_t0 = pool_trace_clock_ns();
  (void)batch_t0;  // unused in HRTDM_OBS_OFF builds
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->n = n;
    impl_->fn = &fn;
    impl_->remaining = threads_;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  std::vector<Failure> failures;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->batch_done.wait(lock, [&] { return impl_->remaining == 0; });
    failures = impl_->failures;
    impl_->fn = nullptr;
  }
  HRTDM_OBSERVE("pool.batch_wall_us",
                (pool_trace_clock_ns() - batch_t0) / 1000);
  rethrow_first(failures);
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for_index(int threads, std::int64_t n,
                        const std::function<void(std::int64_t)>& fn) {
  HRTDM_EXPECT(n >= 0, "task count must be non-negative");
  if (threads <= 1 || n <= 1) {
    std::vector<Failure> failures = {run_slice(0, 1, n, fn)};
    rethrow_first(failures);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::int64_t>(threads, n)));
  pool.for_index(n, fn);
}

}  // namespace hrtdm::util
