// Plain-text table rendering for the bench harnesses.
//
// Every bench binary prints the paper's figure/table as aligned text rows;
// this helper keeps the formatting consistent across all of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hrtdm::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, int64 plainly.
  static std::string cell(double v, int precision = 3);
  static std::string cell(std::int64_t v);
  static std::string cell(const std::string& v) { return v; }

  /// Renders with a header rule and right-aligned numeric-looking columns.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries:
///   ===== E1: Fig. 1 — worst-case search times (m=4, t=64) =====
std::string banner(const std::string& title);

}  // namespace hrtdm::util
