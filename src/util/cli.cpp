#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace hrtdm::util {

namespace {
const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    case 3: return "string";
  }
  return "?";
}
}  // namespace

CliFlags& CliFlags::add_int(const std::string& name,
                            std::int64_t default_value,
                            const std::string& help) {
  const std::string text = std::to_string(default_value);
  HRTDM_EXPECT(
      flags_.emplace(name, Flag{Kind::kInt, text, text, help}).second,
      "duplicate flag");
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_double(const std::string& name, double default_value,
                               const std::string& help) {
  std::ostringstream oss;
  oss << default_value;
  HRTDM_EXPECT(
      flags_.emplace(name, Flag{Kind::kDouble, oss.str(), oss.str(), help})
          .second,
      "duplicate flag");
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_bool(const std::string& name, bool default_value,
                             const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  HRTDM_EXPECT(
      flags_.emplace(name, Flag{Kind::kBool, text, text, help}).second,
      "duplicate flag");
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_string(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  HRTDM_EXPECT(flags_
                   .emplace(name, Flag{Kind::kString, default_value,
                                       default_value, help})
                   .second,
               "duplicate flag");
  order_.push_back(name);
  return *this;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", arg.c_str());
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (eq == std::string::npos) {
      if (it->second.kind == Kind::kBool) {
        value = "true";  // boolean switch form
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", arg.c_str());
        return false;
      }
    }
    // Validate eagerly so errors point at the offending flag.
    try {
      switch (it->second.kind) {
        case Kind::kInt:
          (void)std::stoll(value);
          break;
        case Kind::kDouble:
          (void)std::stod(value);
          break;
        case Kind::kBool:
          if (value != "true" && value != "false" && value != "1" &&
              value != "0") {
            throw std::invalid_argument(value);
          }
          break;
        case Kind::kString:
          break;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "flag --%s: cannot parse '%s' as %s\n",
                   arg.c_str(), value.c_str(),
                   kind_name(static_cast<int>(it->second.kind)));
      return false;
    }
    it->second.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::lookup(const std::string& name,
                                       Kind kind) const {
  const auto it = flags_.find(name);
  HRTDM_EXPECT(it != flags_.end(), "flag was never registered");
  HRTDM_EXPECT(it->second.kind == kind, "flag accessed with the wrong type");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(lookup(name, Kind::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(lookup(name, Kind::kDouble).value);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kBool).value;
  return v == "true" || v == "1";
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    oss << "  --" << name << " (" << kind_name(static_cast<int>(flag.kind))
        << ", default " << flag.default_value << "): " << flag.help << "\n";
  }
  return oss.str();
}

}  // namespace hrtdm::util
