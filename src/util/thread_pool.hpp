// Deterministic fork-join worker pool.
//
// Built for the embarrassingly parallel layers of the repo (independent
// per-channel simulations, per-seed fault campaigns, per-point bench
// sweeps): a fixed set of index-addressed tasks is split across a fixed
// set of workers with a *static* round-robin assignment — no work
// stealing, no shared queue — so the task -> worker mapping is a pure
// function of (n, threads). Callers write results into pre-sized slots
// keyed by task index; because tasks share nothing, the combined result
// is bit-identical to a serial loop regardless of scheduling.
//
// Exception semantics match a serial loop as closely as possible: every
// task is attempted, and the pending exception with the *lowest task
// index* is rethrown once the batch completes (so which error surfaces
// does not depend on thread timing).
#pragma once

#include <cstdint>
#include <functional>

namespace hrtdm::util {

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers; threads <= 0 selects
  /// hardware_threads().
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all tasks finish.
  /// Worker w executes exactly the indices {w, w + T, w + 2T, ...}
  /// (T = threads()). Rethrows the lowest-index pending exception after
  /// the whole batch has been attempted. Not reentrant from inside fn.
  void for_index(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// std::thread::hardware_concurrency(), never less than 1.
  static int hardware_threads();

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// One-shot convenience: `threads <= 1` runs the loop inline (still with
/// run-every-task / rethrow-lowest-index semantics); otherwise a temporary
/// ThreadPool executes it. Results must be written into index-keyed slots
/// by the caller, which is what makes parallel == serial bit-identical.
void parallel_for_index(int threads, std::int64_t n,
                        const std::function<void(std::int64_t)>& fn);

}  // namespace hrtdm::util
