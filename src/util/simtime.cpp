#include "util/simtime.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hrtdm::util {

Duration Duration::from_seconds(double s) {
  return Duration::nanoseconds(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::int64_t Duration::floor_div(Duration o) const {
  HRTDM_EXPECT(o.ns_ > 0, "floor_div divisor must be positive");
  std::int64_t q = ns_ / o.ns_;
  std::int64_t r = ns_ % o.ns_;
  if (r != 0 && ((r < 0) != (o.ns_ < 0))) {
    --q;
  }
  return q;
}

std::int64_t Duration::ceil_div(Duration o) const {
  HRTDM_EXPECT(o.ns_ > 0, "ceil_div divisor must be positive");
  return -Duration{-ns_}.floor_div(o);
}

namespace {

std::string render_ns(std::int64_t ns) {
  std::ostringstream oss;
  const std::int64_t mag = ns < 0 ? -ns : ns;
  if (mag >= 1'000'000'000) {
    oss << static_cast<double>(ns) * 1e-9 << "s";
  } else if (mag >= 1'000'000) {
    oss << static_cast<double>(ns) * 1e-6 << "ms";
  } else if (mag >= 1'000) {
    oss << static_cast<double>(ns) * 1e-3 << "us";
  } else {
    oss << ns << "ns";
  }
  return oss.str();
}

}  // namespace

std::string Duration::str() const { return render_ns(ns_); }

std::string SimTime::str() const {
  if (*this == SimTime::infinity()) {
    return "t=inf";
  }
  return "t=" + render_ns(ns_);
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.str(); }
std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.str(); }

}  // namespace hrtdm::util
