#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hrtdm::util {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ == 0 ? 0.0 : min_; }
double OnlineStats::max() const { return count_ == 0 ? 0.0 : max_; }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  // NaN breaks the strict weak ordering std::sort requires (and therefore
  // every percentile/min/max derived from the sorted values); reject it at
  // the boundary where the caller can still be identified.
  HRTDM_EXPECT(!std::isnan(x), "NaN sample");
  values_.push_back(x);
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  HRTDM_EXPECT(!values_.empty(), "percentile of empty sample set");
  HRTDM_EXPECT(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  ensure_sorted();
  if (p == 0.0) {
    return values_.front();
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size())));
  return values_[std::min(rank, values_.size()) - 1];
}

double Samples::mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s / static_cast<double>(values_.size());
}

double Samples::max() const {
  HRTDM_EXPECT(!values_.empty(), "max of empty sample set");
  ensure_sorted();
  return values_.back();
}

double Samples::min() const {
  HRTDM_EXPECT(!values_.empty(), "min of empty sample set");
  ensure_sorted();
  return values_.front();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HRTDM_EXPECT(hi > lo, "histogram range must be non-empty");
  HRTDM_EXPECT(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  // A NaN sample would make `frac` NaN, and float->int conversion of NaN
  // is undefined behaviour *before* the clamp can fix anything. Count the
  // sample as dropped instead.
  if (std::isnan(x)) {
    ++nan_dropped_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  double scaled = frac * static_cast<double>(counts_.size());
  // +/-inf (and finite out-of-range values) clamp to the edge bins; clamp
  // in floating point first so the int conversion is always defined.
  scaled = std::clamp(scaled, 0.0,
                      static_cast<double>(counts_.size()) - 1.0);
  const auto idx = static_cast<std::int64_t>(scaled);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::int64_t Histogram::bin_count(std::size_t i) const {
  HRTDM_EXPECT(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::int64_t peak = 1;
  for (std::int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream oss;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    oss << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return oss.str();
}

}  // namespace hrtdm::util
