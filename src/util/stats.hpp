// Statistics accumulators used by the experiment harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hrtdm::util {

/// Online mean / variance / extrema (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  void merge(const OnlineStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentiles by retaining all samples. Suitable for the run sizes
/// used in the benches (<= a few million samples).
class Samples {
 public:
  /// Contract-fails on NaN (which would break sorting and every order
  /// statistic); +/-inf is accepted.
  void add(double x);
  std::int64_t count() const { return static_cast<std::int64_t>(values_.size()); }
  /// p in [0, 100]; nearest-rank percentile. Requires at least one sample.
  double percentile(double p) const;
  double mean() const;
  double max() const;
  double min() const;
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so no finite sample is silently dropped. NaN samples cannot
/// be binned (and converting NaN to an integer index is UB); they are
/// counted in nan_dropped() instead.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::int64_t total() const { return total_; }
  /// NaN inputs to add(), excluded from total() and every bin.
  std::int64_t nan_dropped() const { return nan_dropped_; }
  std::size_t bins() const { return counts_.size(); }
  std::int64_t bin_count(std::size_t i) const;
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  std::int64_t nan_dropped_ = 0;
};

}  // namespace hrtdm::util
