#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace hrtdm::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HRTDM_EXPECT(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  HRTDM_EXPECT(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::cell(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::cell(std::int64_t v) { return std::to_string(v); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    oss << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  oss << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

std::string banner(const std::string& title) {
  return "\n===== " + title + " =====\n";
}

}  // namespace hrtdm::util
