// Exact integer math used by the tree-search analysis.
//
// The closed forms in the paper (Eq. 9/10) mix integer floors/ceilings of
// base-m logarithms of *rational* quantities such as t/(m p); evaluating them
// in floating point invites off-by-one errors near powers of m, so every
// helper here is exact integer arithmetic.
#pragma once

#include <cstdint>

namespace hrtdm::util {

/// m^e for e >= 0; checks against int64 overflow.
std::int64_t ipow(std::int64_t m, std::int64_t e);

/// True iff x is m^e for some integer e >= 0 (x >= 1, m >= 2).
bool is_power_of(std::int64_t m, std::int64_t x);

/// floor(log_m(x)) for x >= 1, m >= 2: the largest e with m^e <= x.
std::int64_t ilog_floor(std::int64_t m, std::int64_t x);

/// ceil(log_m(x)) for x >= 1, m >= 2: the smallest e with m^e >= x.
std::int64_t ilog_ceil(std::int64_t m, std::int64_t x);

/// floor(log_m(num/den)) for num, den >= 1, m >= 2. May be negative —
/// Eq. 9 evaluates floor(log_m(t/(m p))) with m p possibly exceeding t.
std::int64_t ilog_floor_rational(std::int64_t m, std::int64_t num,
                                 std::int64_t den);

/// ceil(a / b) for b > 0 (a may be negative).
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// floor(a / b) for b > 0 (a may be negative).
std::int64_t floor_div(std::int64_t a, std::int64_t b);

/// binomial(n, k) in int64; used by the exhaustive adversary enumerations.
/// Overflow-checked; contract-fails rather than wrapping.
std::int64_t binomial(std::int64_t n, std::int64_t k);

}  // namespace hrtdm::util
