// Contract-checking helpers.
//
// The simulator and the analysis code are dense in preconditions that come
// straight from the paper (t must be m^n, k in [0, t], ...). Violations are
// programming errors, never recoverable conditions, so they throw
// ContractViolation which test code can assert on and application code lets
// propagate to a crash with a useful message.
#pragma once

#include <stdexcept>
#include <string>

namespace hrtdm::util {

/// Thrown when an HRTDM_EXPECT / HRTDM_ENSURE contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace hrtdm::util

/// Precondition check: throws ContractViolation when `cond` is false.
#define HRTDM_EXPECT(cond, message)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hrtdm::util::detail::contract_failure("precondition", #cond,        \
                                              __FILE__, __LINE__, (message)); \
    }                                                                        \
  } while (false)

/// Invariant / postcondition check: throws ContractViolation when false.
#define HRTDM_ENSURE(cond, message)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hrtdm::util::detail::contract_failure("invariant", #cond, __FILE__, \
                                              __LINE__, (message));         \
    }                                                                       \
  } while (false)
