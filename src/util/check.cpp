#include "util/check.hpp"

#include <sstream>

namespace hrtdm::util::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& message) {
  std::ostringstream oss;
  oss << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw ContractViolation(oss.str());
}

}  // namespace hrtdm::util::detail
