#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hrtdm::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& s : s_) {
    s = mixer.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  HRTDM_EXPECT(lo <= hi, "uniform_i64 requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double rate) {
  HRTDM_EXPECT(rate > 0.0, "exponential rate must be positive");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

bool Rng::bernoulli(double p) {
  HRTDM_EXPECT(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform01() < p;
}

std::vector<std::int64_t> Rng::permutation(std::int64_t n) {
  HRTDM_EXPECT(n >= 0, "permutation size must be >= 0");
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  for (std::int64_t i = n - 1; i > 0; --i) {
    const std::int64_t j = uniform_i64(0, i);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace hrtdm::util
