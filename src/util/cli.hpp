// Minimal command-line flag parsing for the example/bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches;
// unknown flags are an error so typos do not silently run the default
// scenario. Not a general-purpose library — just enough for the examples
// to be parameterisable without taking a dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hrtdm::util {

class CliFlags {
 public:
  /// Registers flags with defaults and a help line each.
  CliFlags& add_int(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  CliFlags& add_double(const std::string& name, double default_value,
                       const std::string& help);
  CliFlags& add_bool(const std::string& name, bool default_value,
                     const std::string& help);
  CliFlags& add_string(const std::string& name,
                       const std::string& default_value,
                       const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or on any
  /// unknown/malformed flag; the caller should exit.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// The rendered usage text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string value;          // textual; parsed on access
    std::string default_value;  // kept separate: parse() mutates `value`
    std::string help;
  };
  const Flag& lookup(const std::string& name, Kind kind) const;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace hrtdm::util
